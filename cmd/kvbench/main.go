// Command kvbench runs the Section 7.1.1 key-value map microbenchmark
// with the real lock implementations and real goroutines: an AVL tree
// under a single lock, a configurable op mix, fixed-duration runs with
// per-thread op counts, throughput and the fairness factor.
//
// Locks are constructed through the internal/lockreg registry, so every
// registered algorithm is available by name: -locks all sweeps the full
// set, -list prints it.
//
// On a multi-core host these numbers compare the real locks end to end;
// the paper-shaped NUMA curves come from cmd/reproduce (virtual time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/kvmap"
	"repro/internal/lockreg"
	"repro/internal/locks"
	"repro/internal/numa"
)

func main() {
	lockNames := flag.String("locks", "MCS,CNA,C-BO-MCS,HMCS",
		"comma-separated locks to run, or \"all\" (see -list)")
	list := flag.Bool("list", false, "list the registered locks and exit")
	threadsList := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	dur := flag.Duration("duration", 200*time.Millisecond, "measured interval per run")
	repeats := flag.Int("repeats", 3, "runs to average (the paper uses 5)")
	keyRange := flag.Int("keyrange", 1024, "key range (map pre-filled to half)")
	updates := flag.Int("updates", 200, "update fraction in permille (paper: 200)")
	external := flag.Int("external", 0, "external-work loop iterations between ops")
	fourSocket := flag.Bool("4s", false, "use the 4-socket topology")
	flag.Parse()

	if *list {
		for _, spec := range lockreg.All() {
			fmt.Printf("%-10s %s\n", spec.Name, spec.Description)
		}
		return
	}

	topo := numa.TwoSocketXeonE5()
	if *fourSocket {
		topo = numa.FourSocketXeonE7()
	}

	var counts []int
	for _, s := range strings.Split(*threadsList, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "kvbench: bad thread count %q\n", s)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	specs, err := lockreg.Resolve(*lockNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		os.Exit(2)
	}

	var results []harness.Result
	for _, spec := range specs {
		workload := func(threads int) func(*locks.Thread, int) {
			env := lockreg.Env{MaxThreads: threads, Topology: topo}
			m := kvmap.NewMap(spec.Build(env))
			setup := locks.NewThread(0, 0)
			m.Prefill(setup, *keyRange, 1)
			w := kvmap.Workload{KeyRange: *keyRange, UpdatePermille: *updates, ExternalWork: *external}
			return func(t *locks.Thread, op int) { w.Op(m, t) }
		}
		rs := harness.Sweep(harness.Config{
			Name:     "kv/" + spec.Name,
			Topo:     topo,
			Duration: *dur,
			Repeats:  *repeats,
		}, counts, workload)
		results = append(results, rs...)
	}
	fmt.Print(harness.FormatResults(results))
}
