package repro

// Facade smoke test for the reader-writer surface: NewRWMutex returns
// the sync.RWMutex shape for "-rw" names, Build's *Thread form
// satisfies RWMutex, and the non-RW error points at the "-rw" variant.

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFacadeRWMutex(t *testing.T) {
	mu := MustNewRWMutex("cna-rw")
	var _ sync.Locker = mu
	var _ sync.Locker = mu.RLocker()

	mu.RLock()
	if mu.TryLock() {
		t.Fatal("writer TryLock succeeded under a read hold")
	}
	mu.RUnlock()

	mu.Lock()
	if mu.TryRLock() {
		t.Fatal("TryRLock succeeded under a write hold")
	}
	if mu.RLockTimeout(time.Millisecond) {
		t.Fatal("timed read acquire succeeded under a write hold")
	}
	mu.Unlock()

	if _, err := NewRWMutex("cna"); err == nil {
		t.Fatal("NewRWMutex accepted a lock without a read side")
	} else if !strings.Contains(err.Error(), "cna-rw") && !strings.Contains(err.Error(), "CNA-rw") {
		t.Fatalf("error %q does not point at the -rw variant", err)
	}
}

func TestFacadeRWBuild(t *testing.T) {
	env := Env{MaxThreads: 2, Topology: TwoSocketXeonE5()}
	m := MustBuild("mcs-rw", env)
	rw, ok := m.(RWMutex)
	if !ok {
		t.Fatalf("MustBuild(mcs-rw) returned %T, not an RWMutex", m)
	}
	th := NewThread(0, 0)
	rw.RLock(th)
	rw.RUnlock(th)
	rw.Lock(th)
	rw.Unlock(th)
}
