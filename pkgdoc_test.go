package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocComments is the package-documentation lint CI runs:
// every package under internal/ and cmd/ (and the root package) must
// carry a package doc comment ("// Package ..." / "// Command ...") so
// `go doc` output is useful. A new package without one fails here, not
// in review.
func TestPackageDocComments(t *testing.T) {
	pkgDirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != "." && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			pkgDirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for dir := range pkgDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) >= 20 {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (in %s) has no package doc comment; add a `// Package %s ...` comment so `go doc` output is useful", name, dir, name)
			}
		}
	}
}
